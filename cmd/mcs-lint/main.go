// Command mcs-lint runs the repo's custom static-analysis suite — the
// determinism and concurrency invariants described in internal/lint —
// over the module's packages and reports file:line diagnostics.
//
// Usage:
//
//	mcs-lint [-json] [-run detrand,poolonly] [-C dir] [patterns...]
//
// Patterns default to ./... and are resolved against the module root
// (the nearest parent directory holding go.mod). Exit status is 0 when
// clean, 1 when findings were reported, and 2 on usage or load errors
// (including type-check failures: an unbuildable tree cannot be
// analyzed trustworthily).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	dir := flag.String("C", "", "module directory to lint (default: module root above the working directory)")
	list := flag.Bool("list", false, "list analyzers and exit")
	graph := flag.Bool("graph", false, "dump the module call graph instead of linting (debug aid)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mcs-lint [flags] [patterns...]\n\nAnalyzers enforce the repo's determinism and concurrency invariants;\nsee internal/lint and docs/ARCHITECTURE.md §9. Suppress legitimate\nsites with '//mcs:allow <analyzer> <reason>'.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		var err error
		if analyzers, err = lint.ByName(*run); err != nil {
			fatal(err)
		}
	}

	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		if root, err = findModuleRoot(wd); err != nil {
			fatal(err)
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintf(os.Stderr, "mcs-lint: type error: %v\n", terr)
		}
	}
	if broken {
		os.Exit(2)
	}

	if *graph {
		if len(pkgs) == 0 {
			return
		}
		mod := &lint.Module{Pkgs: pkgs}
		fmt.Print(mod.Graph().Dump(pkgs[0].Fset))
		return
	}

	relativize := func(file string) string {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return file
	}
	diags := lint.Run(pkgs, analyzers)
	for i := range diags {
		diags[i].File = relativize(diags[i].File)
		for j := range diags[i].Chain {
			diags[i].Chain[j].File = relativize(diags[i].Chain[j].File)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			// Interprocedural findings carry the call chain: render it
			// frame by frame under the summary line.
			for _, fr := range d.Chain {
				fmt.Printf("    %s\t%s:%d\n", fr.Func, fr.File, fr.Line)
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mcs-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mcs-lint: no go.mod above %s (use -C)", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcs-lint:", err)
	os.Exit(2)
}
