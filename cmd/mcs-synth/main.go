// Command mcs-synth synthesizes a system configuration for a two-cluster
// application: the TDMA slot sequence and sizes, the ET process and CAN
// message priorities, and the TT schedule tables, together with the full
// schedulability analysis report (response times, degree of
// schedulability, gateway buffer bounds).
//
// The synthesis runs on a repro.Solver session: Ctrl-C cancels the
// search gracefully and still prints (and saves) the best configuration
// found so far, and -v streams live progress events while the
// optimizer runs.
//
// Examples:
//
//	mcs-gen -nodes 2 -o app.json
//	mcs-synth -in app.json -strategy or
//	mcs-synth -cruise -strategy os -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro"
	"repro/internal/cli"
)

const tool = "mcs-synth"

// strategyNames lists the accepted -strategy values from the same
// listing GET /v1/strategies serves, so the usage screen can never
// drift from repro.ParseStrategy or the wire surface.
func strategyNames() []string {
	var names []string
	for _, s := range repro.ListStrategies().Strategies {
		names = append(names, s.Name)
	}
	return names
}

func main() {
	var (
		in         = flag.String("in", "", "input system JSON (from mcs-gen)")
		cruiseFl   = flag.Bool("cruise", false, "use the built-in cruise-controller case study")
		strategy   = flag.String("strategy", "or", "synthesis strategy: "+strings.Join(strategyNames(), ", "))
		saIters    = flag.Int("sa-iterations", 300, "iteration budget for sas/sar")
		saRestarts = flag.Int("sa-restarts", 1, "independent annealing chains for sas/sar (best-ever wins)")
		seed       = flag.Int64("seed", 1, "seed for the randomized strategies")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel evaluation workers (1 = serial; results are identical)")
		useDelta   = flag.Bool("delta", true, "use the incremental delta-evaluation engine (results are identical either way)")
		verbose    = flag.Bool("v", false, "stream live progress and print per-process response times")
		tables     = flag.Bool("tables", false, "print the synthesized schedule tables and the MEDL")
		saveCfg    = flag.String("save-config", "", "write the synthesized configuration (round, priorities, pins) as JSON")
	)
	// -h appends the per-strategy descriptions below the flag listing.
	defaultUsage := flag.Usage
	flag.Usage = func() {
		defaultUsage()
		fmt.Fprintf(flag.CommandLine.Output(), "\nStrategies (also listed by GET /v1/strategies on mcs-serve):\n")
		for _, s := range repro.ListStrategies().Strategies {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-4s %s\n", s.Name, s.Description)
		}
	}
	flag.Parse()

	sys, err := cli.LoadSystem(*in, *cruiseFl)
	if err != nil {
		cli.Fatal(tool, err)
	}
	strat, err := repro.ParseStrategy(*strategy)
	if err != nil {
		cli.Fatal(tool, err)
	}

	opts := []repro.Option{
		repro.WithStrategy(strat),
		repro.WithSAIterations(*saIters),
		repro.WithSARestarts(*saRestarts),
		repro.WithSeed(*seed),
		repro.WithWorkers(*workers),
		repro.WithDelta(*useDelta),
	}
	if *verbose {
		opts = append(opts, repro.WithObserver(repro.ObserverFunc(func(p repro.Progress) {
			fmt.Fprintf(os.Stderr, "progress %v/%s step=%d evals=%d delta=%d s_total=%d schedulable=%v\n",
				p.Strategy, p.Phase, p.Step, p.Evaluations, p.BestDelta, p.BestBuffers, p.Schedulable)
		})))
	}
	solver, err := repro.NewSolver(sys.Application, sys.Architecture, opts...)
	if err != nil {
		cli.Fatal(tool, err)
	}

	// Ctrl-C cancels the search within one evaluation granule; the
	// best-so-far configuration is still reported below.
	ctx, stop := cli.Context()
	defer stop()

	res, err := solver.Synthesize(ctx)
	interrupted := cli.Interrupted(tool, err, res != nil)
	report(sys, strat, res, *verbose)
	if *saveCfg != "" {
		f, err := os.Create(*saveCfg)
		if err != nil {
			cli.Fatal(tool, err)
		}
		if err := res.Config.Save(f); err != nil {
			cli.Fatal(tool, err)
		}
		if err := f.Close(); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Printf("configuration written to %s\n", *saveCfg)
	}
	if *tables {
		fmt.Println()
		res.Analysis.WriteScheduleTables(os.Stdout, sys.Application, sys.Architecture)
	}
	if interrupted {
		cli.Exit()
	}
	if !res.Analysis.Schedulable {
		os.Exit(2)
	}
}

func report(sys *repro.System, strat repro.Strategy, res *repro.SynthesisResult, verbose bool) {
	app := sys.Application
	a := res.Analysis
	fmt.Printf("application %q on %q, strategy %v (%d analyses)\n",
		app.Name, sys.Architecture.Name, strat, res.Evaluations)
	fmt.Printf("TDMA round: %v (period %d)\n", res.Config.Round, res.Config.Round.Period())
	fmt.Printf("schedulable: %v   delta_Gamma: %d   MCS iterations: %d\n",
		a.Schedulable, a.Delta, a.Iterations)
	fmt.Println("graph responses:")
	for g := range app.Graphs {
		gr := &app.Graphs[g]
		mark := "meets"
		if a.GraphResp[g] > gr.Deadline {
			mark = "MISSES"
		}
		fmt.Printf("  %-12s R=%6d  D=%6d  (%s)\n", gr.Name, a.GraphResp[g], gr.Deadline, mark)
	}
	fmt.Printf("buffers: OutCAN=%dB OutTTP=%dB", a.Buffers.OutCAN, a.Buffers.OutTTP)
	var nodes []repro.NodeID
	for n := range a.Buffers.OutNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Printf(" OutN%d=%dB", n, a.Buffers.OutNode[n])
	}
	fmt.Printf("  s_total=%dB\n", a.Buffers.Total)
	if verbose {
		fmt.Println("process completions (worst case, relative to release):")
		for _, p := range app.Procs {
			pr, ok := a.Proc[p.ID]
			if !ok {
				continue
			}
			fmt.Printf("  %-24s O=%6d J=%6d W=%6d C=%5d  done by %6d\n",
				p.Name, pr.O, pr.J, pr.W, p.WCET, pr.Completion())
		}
	}
}
