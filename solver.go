package repro

import (
	"repro/internal/delta"
	"repro/internal/opt"
	"repro/internal/solve"
)

// Solver is a reusable synthesis session for one (application,
// architecture) pair: it owns a shared evaluation pool and caches the
// system's derived state (default configuration templates, slot-length
// candidate sets), so repeated Analyze/Synthesize/Simulate calls stop
// re-deriving invariants. Create one with NewSolver; it is safe for
// concurrent use, and every operation is context-first:
//
//	solver, _ := repro.NewSolver(sys.Application, sys.Architecture,
//	    repro.WithStrategy(repro.StrategyOptimizeResources),
//	    repro.WithWorkers(runtime.NumCPU()))
//	res, err := solver.Synthesize(ctx)
//
// Cancelling ctx mid-run returns promptly with the best configuration
// found so far (when one exists) alongside the context's error, so a
// SIGINT never loses finished work. WithObserver streams progress
// (phase, step, evaluations, incumbent quality) while a run executes.
type Solver = solve.Solver

// Option is a functional option for NewSolver.
type Option = solve.Option

// Observer receives synthesis progress events; see WithObserver.
type Observer = solve.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = solve.ObserverFunc

// Progress is one synthesis progress event.
type Progress = solve.Progress

// SolverOptions is the normalized option set of a Solver (inspectable
// via Solver.Options).
type SolverOptions = solve.Options

// DeltaStats reports the incremental delta-evaluation engine's cache
// counters (see Solver.DeltaStats and WithDelta).
type DeltaStats = delta.Stats

// NewSolver builds a synthesis session for the application/architecture
// pair. Options normalize exactly once, here: worker counts propagate
// top-down into the nested heuristic options (so they can never
// disagree unless explicitly overridden), and the seed defaults to 1
// for every randomized path.
func NewSolver(app *Application, arch *Architecture, opts ...Option) (*Solver, error) {
	return solve.New(app, arch, opts...)
}

// WithStrategy selects the algorithm run by Solver.Synthesize.
func WithStrategy(s Strategy) Option { return solve.WithStrategy(s) }

// WithSeed seeds every randomized path: the annealing chains and the
// OR neighbourhood sampling (0 keeps the default of 1).
func WithSeed(seed int64) Option { return solve.WithSeed(seed) }

// WithSAIterations bounds each annealing chain (default 300).
func WithSAIterations(n int) Option { return solve.WithSAIterations(n) }

// WithSARestarts sets the number of independent annealing chains for
// the SAS/SAR strategies (default 1); the best-ever solution wins.
func WithSARestarts(n int) Option { return solve.WithSARestarts(n) }

// WithWorkers bounds the solver's shared evaluation pool (default 1 =
// serial). The synthesized configurations are identical for every
// value.
func WithWorkers(n int) Option { return solve.WithWorkers(n) }

// WithObserver streams progress events to obs while operations run.
func WithObserver(obs Observer) Option { return solve.WithObserver(obs) }

// WithOROptions tunes the OS/OR heuristics (iteration caps, seed
// limits, neighbour budgets). Unset nested worker counts inherit the
// WithWorkers value; an unset RandSeed inherits WithSeed.
func WithOROptions(or opt.OROptions) Option { return solve.WithOROptions(or) }

// WithDelta toggles the incremental delta-evaluation engine (on by
// default). Synthesis results are bit-identical either way — the
// differential harness proves it — so turning it off is an escape
// hatch for benchmarking and debugging, not correctness. The CLIs
// expose this as -delta=false.
func WithDelta(on bool) Option { return solve.WithDelta(on) }
