package repro

import (
	"bytes"
	"testing"
)

// TestConfigRoundTrip synthesizes a configuration, serializes it, loads
// it back and verifies the re-analysis is bit-identical (the whole
// pipeline is deterministic).
func TestConfigRoundTrip(t *testing.T) {
	sys, err := Generate(GenSpec{Seed: 6, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	res, err := Synthesize(app, arch, SynthesisOptions{Strategy: StrategyOptimizeSchedule})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveConfig(res.Config, &buf); err != nil {
		t.Fatalf("SaveConfig: %v", err)
	}
	loaded, err := LoadConfig(bytes.NewReader(buf.Bytes()), app, arch)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	a1 := res.Analysis
	a2, err := Analyze(app, arch, loaded)
	if err != nil {
		t.Fatalf("Analyze(loaded): %v", err)
	}
	if a1.Delta != a2.Delta || a1.Schedulable != a2.Schedulable || a1.Buffers.Total != a2.Buffers.Total {
		t.Errorf("round trip changed the analysis: delta %d/%d buffers %d/%d",
			a1.Delta, a2.Delta, a1.Buffers.Total, a2.Buffers.Total)
	}
	for g := range app.Graphs {
		if a1.GraphResp[g] != a2.GraphResp[g] {
			t.Errorf("graph %d response differs: %d vs %d", g, a1.GraphResp[g], a2.GraphResp[g])
		}
	}
	// Serialization is stable: saving again yields identical bytes.
	var buf2 bytes.Buffer
	if err := SaveConfig(loaded, &buf2); err != nil {
		t.Fatalf("SaveConfig(loaded): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("config serialization is not stable")
	}
}

// TestLoadConfigRejectsForeignSystem: a configuration saved for one
// application must not validate against a different one.
func TestLoadConfigRejectsForeignSystem(t *testing.T) {
	sysA, err := Generate(GenSpec{Seed: 6, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	res, err := Synthesize(sysA.Application, sysA.Architecture, SynthesisOptions{Strategy: StrategyStraightforward})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveConfig(res.Config, &buf); err != nil {
		t.Fatalf("SaveConfig: %v", err)
	}
	sysB, err := Generate(GenSpec{Seed: 7, TTNodes: 2, ETNodes: 2, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, err := LoadConfig(bytes.NewReader(buf.Bytes()), sysB.Application, sysB.Architecture); err == nil {
		t.Error("foreign configuration accepted")
	}
}

// TestMultiRateEndToEnd runs the complete pipeline on a multi-rate
// application (two periods): synthesis, analysis and simulation with
// bound checking across two hyper-periods.
func TestMultiRateEndToEnd(t *testing.T) {
	sys, err := Generate(GenSpec{
		Seed: 5, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8, MultiRate: true,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	h, err := app.Hyperperiod()
	if err != nil {
		t.Fatalf("Hyperperiod: %v", err)
	}
	if h == app.Graphs[len(app.Graphs)-1].Period && len(app.Graphs) > 1 {
		t.Log("note: all graphs ended up with the hyperperiod-period")
	}
	res, err := Synthesize(app, arch, SynthesisOptions{Strategy: StrategyOptimizeSchedule})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !res.Analysis.Schedulable {
		t.Skipf("multi-rate seed 5 unschedulable (delta=%d)", res.Analysis.Delta)
	}
	simRes, err := Simulate(app, arch, res.Config, res.Analysis, SimOptions{Cycles: 2})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(simRes.Violations) != 0 {
		t.Fatalf("violations: %v", simRes.Violations)
	}
	for g := range app.Graphs {
		if simRes.GraphWorstResp[g] > res.Analysis.GraphResp[g] {
			t.Errorf("graph %d: simulated %d exceeds analysed %d", g, simRes.GraphWorstResp[g], res.Analysis.GraphResp[g])
		}
	}
}

// TestSimulationTrace exercises the textual trace output end to end.
func TestSimulationTrace(t *testing.T) {
	sys, err := CruiseController()
	if err != nil {
		t.Fatalf("CruiseController: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	res, err := Synthesize(app, arch, SynthesisOptions{Strategy: StrategyOptimizeSchedule})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var trace bytes.Buffer
	if _, err := Simulate(app, arch, res.Config, res.Analysis, SimOptions{Cycles: 1, Trace: &trace}); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	out := trace.String()
	for _, want := range []string{"TT start", "finish", "CAN start", "deliver", "S_G drain"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("trace misses %q", want)
		}
	}
}
