package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"
	"time"

	"repro"
)

// The differential-replay harness: every synthesis strategy and the
// design-space exploration replayed over the seeded scenario corpus
// with the incremental delta-evaluation engine on and off, for serial
// and parallel pools, asserting byte-identical outcomes.
//
// "Byte-identical" is literal: each run is reduced to a canonical JSON
// transcript — the synthesized configuration, the full analysis, the
// evaluation counter, the Pareto front and the observer's progress
// stream — and the transcript bytes must equal the reference run's
// (delta off, one worker) exactly. This is the engine's contract: the
// caches may only change how fast an answer arrives, never the answer,
// the reported work, or the events emitted along the way.

// diffWorkers are the pool sizes replayed against each other.
var diffWorkers = []int{1, 4}

// transcript is the canonical observable outcome of one run.
type transcript struct {
	Config      *repro.Config
	Analysis    *repro.Analysis
	Evaluations int
	Front       []repro.ParetoPoint `json:",omitempty"`
	Hypervolume float64             `json:",omitempty"`
	Events      []repro.Progress
}

// canonical renders the transcript as deterministic bytes. Progress
// events are delivered serialized but chains of a parallel annealer
// interleave nondeterministically (already with delta off), so the
// stream is canonicalized into (phase, chain, step) order — within one
// chain the order is total, making the sort a stable re-keying, not a
// loss of information.
func (tr *transcript) canonical(t *testing.T) []byte {
	t.Helper()
	sort.SliceStable(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Chain != b.Chain {
			return a.Chain < b.Chain
		}
		return a.Step < b.Step
	})
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal transcript: %v", err)
	}
	return b
}

// replay runs one strategy (or the exploration, for StrategyCount) on
// a fresh solver and returns its canonical transcript bytes.
//
// Every leg runs fully instrumented: a live metrics registry and a
// trace with one span per run phase ride on the observer stream, on a
// deterministic fake clock, exactly the shape the service attaches when
// metrics and tracing are enabled. The transcripts must stay
// byte-identical with the instrumentation attached — observability may
// change how a run is watched, never what it computes.
func replay(t *testing.T, sys *repro.System, strat repro.Strategy, explore bool, seed int64, workers int, delta bool) []byte {
	t.Helper()
	tr := &transcript{}
	var mu sync.Mutex
	reg := repro.NewMetricsRegistry()
	seen := reg.Counter("diff_events_total", "observer events seen")
	steps := reg.Histogram("diff_step", "step numbers observed", nil)
	var ticks int64
	trace := repro.NewTrace(repro.ObsClockFunc(func() time.Time {
		ticks++
		return time.Unix(ticks, 0)
	}), "replay")
	phase := ""
	var span *repro.Span
	solver, err := repro.NewSolver(sys.Application, sys.Architecture,
		repro.WithSeed(seed),
		repro.WithWorkers(workers),
		repro.WithDelta(delta),
		repro.WithSAIterations(20),
		repro.WithSARestarts(2),
		repro.WithObserver(repro.ObserverFunc(func(p repro.Progress) {
			mu.Lock()
			tr.Events = append(tr.Events, p)
			seen.Inc()
			steps.Observe(float64(p.Step))
			if p.Phase != phase {
				span.End()
				phase = p.Phase
				span = trace.Root().Start("phase:" + p.Phase)
			}
			mu.Unlock()
		})))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// The instrumentation must account for every event and render.
		trace.End()
		if got := seen.Value(); got != uint64(len(tr.Events)) {
			t.Errorf("metrics saw %d events, transcript has %d", got, len(tr.Events))
		}
		if snap := trace.Snapshot(); snap.Root.EndUnixNano == 0 {
			t.Errorf("trace root not closed")
		}
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Errorf("exposition failed: %v", err)
		}
	}()
	ctx := context.Background()
	if explore {
		res, err := solver.Explore(ctx, repro.WithPopulation(6), repro.WithGenerations(2))
		if err != nil {
			t.Fatalf("explore (delta=%v workers=%d): %v", delta, workers, err)
		}
		tr.Front, tr.Hypervolume, tr.Evaluations = res.Front, res.Hypervolume, res.Evaluations
	} else {
		res, err := solver.SynthesizeWith(ctx, strat)
		if err != nil {
			t.Fatalf("%v (delta=%v workers=%d): %v", strat, delta, workers, err)
		}
		tr.Config, tr.Analysis, tr.Evaluations = res.Config, res.Analysis, res.Evaluations
	}
	return tr.canonical(t)
}

// TestDifferentialReplay is the harness. The reference leg of each
// (corpus member, strategy) cell is the cold path on a serial pool;
// every other (delta, workers) leg must reproduce its transcript to
// the byte.
func TestDifferentialReplay(t *testing.T) {
	for i, spec := range repro.Corpus(3, 800, 4) {
		sys, err := repro.Generate(spec)
		if err != nil {
			t.Fatalf("corpus member %d: %v", i, err)
		}
		type cell struct {
			name    string
			strat   repro.Strategy
			explore bool
		}
		cells := []cell{{name: "dse", explore: true}}
		for _, strat := range repro.Strategies() {
			cells = append(cells, cell{name: strat.String(), strat: strat})
		}
		for _, c := range cells {
			t.Run(fmt.Sprintf("corpus%d/%s", i, c.name), func(t *testing.T) {
				ref := replay(t, sys, c.strat, c.explore, spec.Seed, 1, false)
				for _, workers := range diffWorkers {
					for _, delta := range []bool{false, true} {
						if workers == 1 && !delta {
							continue // the reference leg itself
						}
						got := replay(t, sys, c.strat, c.explore, spec.Seed, workers, delta)
						if !bytes.Equal(got, ref) {
							t.Errorf("delta=%v workers=%d: transcript differs from reference (%d vs %d bytes)",
								delta, workers, len(got), len(ref))
						}
					}
				}
			})
		}
	}
}

// TestDifferentialSession replays every strategy twice on ONE shared
// delta-on session (the service layer's shape: one warm evaluator
// serving many jobs) and checks each run against a cold solver — the
// cache state accumulated by earlier strategies must never leak into a
// later one's results.
func TestDifferentialSession(t *testing.T) {
	spec := repro.Corpus(1, 800, 4)[0]
	sys, err := repro.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := repro.NewSolver(sys.Application, sys.Architecture,
		repro.WithSeed(spec.Seed), repro.WithWorkers(2), repro.WithSAIterations(20))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, strat := range repro.Strategies() {
			got, err := warm.SynthesizeWith(ctx, strat)
			if err != nil {
				t.Fatalf("round %d %v: %v", round, strat, err)
			}
			cold, err := repro.NewSolver(sys.Application, sys.Architecture,
				repro.WithSeed(spec.Seed), repro.WithWorkers(2), repro.WithSAIterations(20), repro.WithDelta(false))
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.SynthesizeWith(ctx, strat)
			if err != nil {
				t.Fatalf("round %d %v cold: %v", round, strat, err)
			}
			g, _ := json.Marshal(got)
			w, _ := json.Marshal(want)
			if !bytes.Equal(g, w) {
				t.Errorf("round %d %v: warm-session result differs from cold solver", round, strat)
			}
		}
	}
	if s := warm.DeltaStats(); s.ConfigHits == 0 {
		t.Errorf("shared session never hit the delta cache: %v", s)
	}
}
