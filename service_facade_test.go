package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestServiceFacadeRoundTrip exercises the re-exported serving surface
// end to end: submit over HTTP through NewServiceHandler, poll to
// completion, and feed the wire-format configuration back through
// LoadConfig.
func TestServiceFacadeRoundTrip(t *testing.T) {
	svc := repro.NewService(repro.ServiceOptions{Workers: 1, JobWorkers: 1})
	defer svc.Close()
	srv := httptest.NewServer(repro.NewServiceHandler(svc))
	defer srv.Close()

	sys, err := repro.Generate(repro.GenSpec{Seed: 2, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := svc.Submit(repro.SynthesisRequest{System: sys, Strategy: "os"})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := repro.Fingerprint(sys)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Fingerprint != fp {
		t.Errorf("submit fingerprint %s, want %s", sub.Fingerprint, fp)
	}

	var st *repro.JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(srv.URL + sub.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		var decoded repro.JobStatus
		if err := jsonDecode(resp, &decoded); err != nil {
			t.Fatal(err)
		}
		st = &decoded
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != repro.JobDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
	cfg, err := repro.LoadConfig(bytes.NewReader(st.Result.Config), sys.Application, sys.Architecture)
	if err != nil {
		t.Fatal(err)
	}
	a, err := repro.Analyze(sys.Application, sys.Architecture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable != st.Result.Analysis.Schedulable || a.Buffers.Total != st.Result.Analysis.BuffersTotal {
		t.Error("wire analysis summary disagrees with re-analyzing the wire configuration")
	}

	ar, err := svc.Analyze(context.Background(), repro.AnalysisRequest{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Results) != 1 || ar.Results[0].Analysis == nil {
		t.Fatalf("facade analyze incomplete: %+v", ar)
	}
}
