package repro_test

import (
	"context"
	"testing"

	"repro"
)

// TestCorpusProperties is the cross-strategy property test over the
// seeded scenario corpus (the same sweep `mcs-gen -n` writes to disk):
// for every member,
//
//  1. OptimizeSchedule never returns a worse degree of schedulability
//     than the SF baseline — the Fig. 8 greedy evaluates the SF-shaped
//     starting round among its candidates, so delta can only improve;
//  2. every point of a DSE front is mutually non-dominated, and the
//     front weakly dominates the single-objective OS result — the
//     archive invariants the explorer's correctness rests on.
//
// The corpus spans node counts, utilization targets and WCET
// distributions, so a regression in either property reproduces from a
// spec index alone.
func TestCorpusProperties(t *testing.T) {
	for i, spec := range repro.Corpus(6, 400, 6) {
		sys, err := repro.Generate(spec)
		if err != nil {
			t.Fatalf("corpus member %d: %v", i, err)
		}
		solver, err := repro.NewSolver(sys.Application, sys.Architecture,
			repro.WithWorkers(2), repro.WithSeed(spec.Seed))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		sf, err := solver.SynthesizeWith(ctx, repro.StrategyStraightforward)
		if err != nil {
			t.Fatalf("corpus member %d: SF: %v", i, err)
		}
		osres, err := solver.SynthesizeWith(ctx, repro.StrategyOptimizeSchedule)
		if err != nil {
			t.Fatalf("corpus member %d: OS: %v", i, err)
		}
		if osres.Analysis.Delta > sf.Analysis.Delta {
			t.Errorf("corpus member %d (seed %d): OS delta %d worse than SF delta %d",
				i, spec.Seed, osres.Analysis.Delta, sf.Analysis.Delta)
		}

		front, err := solver.Explore(ctx, repro.WithPopulation(6), repro.WithGenerations(2))
		if err != nil {
			t.Fatalf("corpus member %d: Explore: %v", i, err)
		}
		if len(front.Front) == 0 {
			t.Fatalf("corpus member %d: empty front", i)
		}
		for a, p := range front.Front {
			for b, q := range front.Front {
				if a != b && p.Objectives().WeaklyDominates(q.Objectives()) {
					t.Errorf("corpus member %d: front[%d] %v weakly dominates front[%d] %v",
						i, a, p.Objectives(), b, q.Objectives())
				}
			}
		}
		osPoint := repro.ParetoPoint{Config: osres.Config, Analysis: osres.Analysis}
		dominated := false
		for _, p := range front.Front {
			if p.Objectives().WeaklyDominates(osPoint.Objectives()) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("corpus member %d: no front point weakly dominates the OS result %v",
				i, osPoint.Objectives())
		}
	}
}
